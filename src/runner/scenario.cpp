#include "runner/scenario.hpp"

#include <algorithm>

namespace ncdn::runner {

namespace {

struct proto_spec {
  algorithm alg;
  std::size_t b_bits;
  round_t t_stability;
  std::vector<std::size_t> sizes;  // n (= k: one token per node)
};

std::vector<scenario> build_registry() {
  // Sizes keep the default full sweep interactive; NCDN-scale sweeps come
  // from explicit --seeds / future size tiers, not from inflating these.
  // d = 8 everywhere; b per protocol family (rlnc-direct needs
  // b >= (k + d) / 2 to fit its k+d-bit coded messages in the O(b) budget).
  const std::vector<proto_spec> protos = {
      {algorithm::token_forwarding, 16, 1, {16, 32}},
      {algorithm::token_forwarding_pipelined, 16, 1, {16}},
      {algorithm::naive_indexed, 32, 1, {16, 32}},
      {algorithm::greedy_forward, 32, 1, {16, 32}},
      {algorithm::priority_forward_flooding, 32, 1, {16}},
      {algorithm::priority_forward_charged, 32, 1, {16}},
      {algorithm::rlnc_direct, 32, 1, {16, 32}},
      {algorithm::centralized_rlnc, 32, 1, {16}},
      {algorithm::tstable_auto, 32, 4, {16}},
      // Patching needs a window long enough to build patches and run full
      // broadcast cycles inside it (§8); T = 256 at n = 32, b = 16 is the
      // sizing the patch tests prove feasible.
      {algorithm::tstable_patch, 16, 256, {32}},
      {algorithm::tstable_chunked, 32, 4, {16}},
  };
  const std::vector<topology_kind> advs = {
      topology_kind::static_path,      topology_kind::static_star,
      topology_kind::permuted_path,    topology_kind::random_connected,
      topology_kind::random_geometric, topology_kind::sorted_path,
  };

  std::vector<scenario> out;
  for (const proto_spec& p : protos) {
    for (std::size_t n : p.sizes) {
      for (topology_kind topo : advs) {
        scenario s;
        s.alg = p.alg;
        s.topo = topo;
        s.prob.n = n;
        s.prob.k = n;
        s.prob.d = 8;
        s.prob.b = p.b_bits;
        s.prob.t_stability = p.t_stability;
        s.prob.place = placement::one_per_node;
        s.name = std::string(to_string(p.alg)) + "/" + to_string(topo) +
                 "/n" + std::to_string(n);
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

}  // namespace

const std::vector<scenario>& scenario_registry() {
  static const std::vector<scenario> registry = build_registry();
  return registry;
}

const scenario* find_scenario(const std::string& name) {
  for (const scenario& s : scenario_registry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<scenario> scenarios_matching(const std::string& pattern) {
  std::vector<scenario> out;
  for (const scenario& s : scenario_registry()) {
    if (pattern.empty() || s.name.find(pattern) != std::string::npos) {
      out.push_back(s);
    }
  }
  return out;
}

std::size_t distinct_algorithms(const std::vector<scenario>& s) {
  std::vector<algorithm> seen;
  for (const scenario& sc : s) {
    if (std::find(seen.begin(), seen.end(), sc.alg) == seen.end()) {
      seen.push_back(sc.alg);
    }
  }
  return seen.size();
}

std::size_t distinct_adversaries(const std::vector<scenario>& s) {
  std::vector<topology_kind> seen;
  for (const scenario& sc : s) {
    if (std::find(seen.begin(), seen.end(), sc.topo) == seen.end()) {
      seen.push_back(sc.topo);
    }
  }
  return seen.size();
}

}  // namespace ncdn::runner
