#include "runner/scenario.hpp"

#include <algorithm>

namespace ncdn::runner {

namespace {

struct proto_spec {
  const char* name;  // protocol registry name
  std::size_t b_bits;
  round_t t_stability;
  std::vector<std::size_t> sizes;  // n (= k: one token per node)
  param_map params;                // extra spec overrides for every cell
};

std::vector<scenario> build_registry() {
  // Sizes keep the default full sweep interactive; NCDN-scale sweeps come
  // from explicit --seeds / future size tiers, not from inflating these.
  // d = 8 everywhere; b per protocol family (rlnc-direct needs
  // b >= (k + d) / 2 to fit its k+d-bit coded messages in the O(b) budget).
  const std::vector<proto_spec> protos = {
      {"token-forwarding", 16, 1, {16, 32}},
      {"token-forwarding-pipelined", 16, 1, {16}},
      {"naive-indexed", 32, 1, {16, 32}},
      {"greedy-forward", 32, 1, {16, 32}},
      {"priority-forward/flooding", 32, 1, {16}},
      {"priority-forward/charged", 32, 1, {16}},
      {"rlnc-direct", 32, 1, {16, 32}},
      // Coding-backend cells (PR3): the density/delay frontier the sparse
      // and generation backends trade along.  gen_size 8 keeps even n16
      // multi-generation; rho pinned so the cells stay stable if the
      // registry default moves.
      {"rlnc-sparse", 32, 1, {16, 32}, {{"rho", "0.2"}}},
      {"rlnc-gen", 32, 1, {16, 32}, {{"gen_size", "8"}, {"band_overlap", "2"}}},
      {"centralized-rlnc", 32, 1, {16}},
      {"tstable/auto", 32, 4, {16}},
      // Patching needs a window long enough to build patches and run full
      // broadcast cycles inside it (§8); T = 256 at n = 32, b = 16 is the
      // sizing the patch tests prove feasible.
      {"tstable/patch", 16, 256, {32}},
      {"tstable/chunked", 32, 4, {16}},
  };
  const std::vector<std::string> advs = {
      "static-path",      "static-star",      "permuted-path",
      "random-connected", "random-geometric", "sorted-path",
  };

  std::vector<scenario> out;
  for (const proto_spec& p : protos) {
    // Every scenario cell must resolve through the registries; a typo'd
    // name fails here, at registry build time, not mid-sweep.
    NCDN_ASSERT(protocol_registry::instance().find(p.name) != nullptr);
    for (std::size_t n : p.sizes) {
      for (const std::string& adv : advs) {
        NCDN_ASSERT(adversary_registry::instance().find(adv) != nullptr);
        scenario s;
        s.alg = p.name;
        s.adv = adv;
        s.params = p.params;
        s.prob.n = n;
        s.prob.k = n;
        s.prob.d = 8;
        s.prob.b = p.b_bits;
        s.prob.t_stability = p.t_stability;
        s.prob.place = placement::one_per_node;
        s.name = s.alg + "/" + s.adv + "/n" + std::to_string(n);
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

}  // namespace

const std::vector<scenario>& scenario_registry() {
  static const std::vector<scenario> registry = build_registry();
  return registry;
}

const scenario* find_scenario(const std::string& name) {
  for (const scenario& s : scenario_registry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<scenario> scenarios_matching(const std::string& pattern) {
  std::vector<scenario> out;
  for (const scenario& s : scenario_registry()) {
    if (pattern.empty() || s.name.find(pattern) != std::string::npos) {
      out.push_back(s);
    }
  }
  return out;
}

std::size_t distinct_algorithms(const std::vector<scenario>& s) {
  std::vector<std::string> seen;
  for (const scenario& sc : s) {
    if (std::find(seen.begin(), seen.end(), sc.alg) == seen.end()) {
      seen.push_back(sc.alg);
    }
  }
  return seen.size();
}

std::size_t distinct_adversaries(const std::vector<scenario>& s) {
  std::vector<std::string> seen;
  for (const scenario& sc : s) {
    if (std::find(seen.begin(), seen.end(), sc.adv) == seen.end()) {
      seen.push_back(sc.adv);
    }
  }
  return seen.size();
}

}  // namespace ncdn::runner
