// ncdn-lint: allow-file(float-metrics): see json.hpp — fixed number
// formatting makes equal doubles emit equal bytes.
#include "runner/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ncdn::json {

void escape_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

std::string format_number(double d) {
  // JSON has no Inf/NaN; degrade to null so the document stays parseable
  // (a divide-by-zero ratio should not poison a whole sweep file).
  if (!std::isfinite(d)) return "null";
  // Integral values within the exactly-representable range print as
  // integers; this covers every counter the runner emits and keeps files
  // byte-stable across libc printf implementations.
  if (std::nearbyint(d) == d && std::fabs(d) <= 9007199254740992.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    return buf;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

void value::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int d) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case kind::null: out += "null"; break;
    case kind::boolean: out += bool_ ? "true" : "false"; break;
    case kind::number: out += format_number(num_); break;
    case kind::string: escape_string(str_, out); break;
    case kind::array:
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out.push_back(',');
        if (pretty) newline_pad(depth + 1);
        arr_[i].write(out, indent, depth + 1);
      }
      if (pretty && !arr_.empty()) newline_pad(depth);
      out.push_back(']');
      break;
    case kind::object:
      out.push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) out.push_back(',');
        if (pretty) newline_pad(depth + 1);
        escape_string(obj_[i].first, out);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        obj_[i].second.write(out, indent, depth + 1);
      }
      if (pretty && !obj_.empty()) newline_pad(depth);
      out.push_back('}');
      break;
  }
}

std::string value::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string value::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  out.push_back('\n');
  return out;
}

namespace {

class parser {
 public:
  explicit parser(const std::string& text) : s_(text) {}

  parse_result run() {
    parse_result res;
    skip_ws();
    res.root = parse_value(res);
    if (res.error.empty()) {
      skip_ws();
      if (pos_ != s_.size()) fail(res, "trailing characters after document");
    }
    res.ok = res.error.empty();
    return res;
  }

 private:
  void fail(parse_result& res, const std::string& why) {
    if (res.error.empty()) {
      res.error =
          "json parse error at byte " + std::to_string(pos_) + ": " + why;
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    std::size_t i = 0;
    while (word[i] != '\0') {
      if (pos_ + i >= s_.size() || s_[pos_ + i] != word[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  value parse_value(parse_result& res) {
    if (pos_ >= s_.size()) {
      fail(res, "unexpected end of input");
      return {};
    }
    switch (s_[pos_]) {
      case '{': return parse_object(res);
      case '[': return parse_array(res);
      case '"': return value{parse_string(res)};
      case 't':
        if (literal("true")) return value{true};
        break;
      case 'f':
        if (literal("false")) return value{false};
        break;
      case 'n':
        if (literal("null")) return value{nullptr};
        break;
      default: return parse_number(res);
    }
    fail(res, "unrecognized token");
    return {};
  }

  value parse_object(parse_result& res) {
    ++pos_;  // '{'
    object o;
    skip_ws();
    if (consume('}')) return value{std::move(o)};
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        fail(res, "expected object key");
        return {};
      }
      std::string key = parse_string(res);
      skip_ws();
      if (!consume(':')) {
        fail(res, "expected ':' after key");
        return {};
      }
      skip_ws();
      value v = parse_value(res);
      if (!res.error.empty()) return {};
      o.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return value{std::move(o)};
      fail(res, "expected ',' or '}' in object");
      return {};
    }
  }

  value parse_array(parse_result& res) {
    ++pos_;  // '['
    array a;
    skip_ws();
    if (consume(']')) return value{std::move(a)};
    while (true) {
      skip_ws();
      value v = parse_value(res);
      if (!res.error.empty()) return {};
      a.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return value{std::move(a)};
      fail(res, "expected ',' or ']' in array");
      return {};
    }
  }

  /// Reads 4 hex digits of a \u escape; sets ok=false (and the error) on
  /// truncation or a bad digit.
  unsigned hex4(parse_result& res, bool& ok) {
    ok = false;
    if (pos_ + 4 > s_.size()) {
      fail(res, "truncated \\u escape");
      return 0;
    }
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = s_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
      else {
        fail(res, "bad hex digit in \\u escape");
        return 0;
      }
    }
    ok = true;
    return cp;
  }

  std::string parse_string(parse_result& res) {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          bool ok = false;
          unsigned cp = hex4(res, ok);
          if (!ok) return out;
          // UTF-16 surrogate halves are not code points: a high surrogate
          // must pair with an immediately following \uDC00..\uDFFF low
          // surrogate (RFC 8259 §7), and an unpaired half of either kind
          // is an error — the old code emitted it as an invalid 3-byte
          // UTF-8 sequence.
          if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(res, "unpaired low surrogate in \\u escape");
            return out;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                s_[pos_ + 1] != 'u') {
              fail(res, "unpaired high surrogate in \\u escape");
              return out;
            }
            pos_ += 2;
            const unsigned lo = hex4(res, ok);
            if (!ok) return out;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail(res, "high surrogate not followed by a low surrogate");
              return out;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          // Encode the code point as UTF-8.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail(res, "unknown escape");
          return out;
      }
    }
    fail(res, "unterminated string");
    return out;
  }

  value parse_number(parse_result& res) {
    // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // — strtod alone would also accept "+5", ".5", and "01".
    const std::size_t start = pos_;
    const auto digit = [&]() {
      return pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9';
    };
    consume('-');
    if (!digit()) {
      fail(res, "expected number");
      return {};
    }
    if (s_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (digit()) ++pos_;
    }
    if (consume('.')) {
      if (!digit()) {
        fail(res, "expected fraction digits");
        return {};
      }
      while (digit()) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (!consume('+')) consume('-');
      if (!digit()) {
        fail(res, "expected exponent digits");
        return {};
      }
      while (digit()) ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    return value{std::strtod(tok.c_str(), nullptr)};
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

parse_result parse(const std::string& text) { return parser(text).run(); }

}  // namespace ncdn::json
