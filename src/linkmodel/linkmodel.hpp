// The link-model subsystem: named, parameterized per-edge channels that sit
// between the adversary's topology and the protocol machines.
//
// A `link_spec` mirrors protocol_spec / adversary_spec: a registry name
// ("perfect", "bernoulli", "gilbert-elliott") plus key=value params.  The
// name picks the *loss process*; the channel-layer params shared by every
// entry configure latency and the medium:
//
//   delay=d        every copy arrives exactly d rounds late
//   delay_max=d    per-copy uniform delay in [0, d] (exclusive with delay)
//   medium=MODE    full (default) | half-duplex | broadcast
//   collisions=B   broadcast only: >= 2 transmitting neighbours collide
//                  at the receiver (default true)
//   tx_prob=q      ALOHA-style transmit gate, q in (0, 1] (default 1)
//
// Loss-process params: bernoulli takes p (erasure probability per directed
// copy); gilbert-elliott takes p_good_bad, p_bad_good (per-round state-flip
// probabilities of the per-edge two-state chain) and loss_good, loss_bad
// (erasure probability in each state).  All draws are pure hashes of
// (link seed, edge, round, direction) — see dynnet/channel.hpp for the
// determinism contract — so perturbing one edge's channel cannot shift any
// other edge's stream.
//
// `ncdn-run run --link "bernoulli,p=0.1,delay=2"` parses the same spec from
// the CLI via parse_link_spec.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "dynnet/channel.hpp"

namespace ncdn {

/// A link-model selection: registry name + overrides.  An empty name means
/// no channel at all — the engine's historical reliable path.
struct link_spec {
  std::string name;
  param_map params;

  bool empty() const noexcept { return name.empty(); }
};

/// One registered loss process; the builder wraps it with the shared
/// latency/medium layer.
struct link_entry {
  std::string name;     // e.g. "bernoulli"
  std::string summary;  // one line for `ncdn-run list-links`
  // Factory of the per-copy erasure predicate (a link_model restricted to
  // lost(); the channel wrapper supplies delay/medium/transmits).
  std::function<std::function<bool(round_t, node_id, node_id)>(
      param_reader&, std::uint64_t seed)>
      make_loss;
};

class link_registry {
 public:
  static link_registry& instance();

  void add(link_entry entry);  // duplicate names are programmer error
  const link_entry* find(const std::string& name) const;
  const std::vector<link_entry>& entries() const { return entries_; }

 private:
  std::vector<link_entry> entries_;
};

std::vector<std::string> list_link_names();

/// Builds the full channel (loss process + latency + medium) from a spec.
/// Throws std::invalid_argument on an unknown name or unknown / malformed
/// params.  `spec.empty()` is programmer error — callers skip the channel
/// entirely for the reliable default.
std::unique_ptr<link_model> build_link_model(const link_spec& spec,
                                             std::uint64_t seed);

/// Parses the CLI spec string "name,key=value,key=value" (name alone is
/// fine).  Throws std::invalid_argument on malformed input.
link_spec parse_link_spec(const std::string& text);

}  // namespace ncdn
