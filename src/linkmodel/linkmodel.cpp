#include "linkmodel/linkmodel.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "core/rng.hpp"

namespace ncdn {

namespace {

// Draw streams.  Every channel decision hashes (link seed, stream tag,
// edge, per-round index) through splitmix64; distinct tags keep the loss,
// delay, chain, and transmit-gate streams independent of each other even
// on the same edge and round.
constexpr std::uint64_t stream_loss = 1;
constexpr std::uint64_t stream_delay = 2;
constexpr std::uint64_t stream_chain = 3;
constexpr std::uint64_t stream_chain_init = 4;
constexpr std::uint64_t stream_tx = 5;

/// Stateless hash draw: a pure function of its four inputs (the
/// determinism contract of dynnet/channel.hpp hangs off this).
std::uint64_t link_draw(std::uint64_t seed, std::uint64_t stream,
                        std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  state = splitmix64(state);
  state ^= 0xbf58476d1ce4e5b9ULL * (a + 1);
  state = splitmix64(state);
  state ^= 0x94d049bb133111ebULL * (b + 1);
  return splitmix64(state);
}

double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Undirected edge key (node ids are 32-bit).
std::uint64_t edge_key(node_id u, node_id v) {
  const node_id lo = u < v ? u : v;
  const node_id hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// Directed per-round index: one slot per (round, direction).
std::uint64_t round_slot(round_t round, node_id from, node_id to) {
  return round * 2 + (from < to ? 0 : 1);
}

double checked_link_probability(const std::string& context, const char* key,
                                double value) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument("ncdn: " + context + " needs " + key +
                                " in [0, 1]");
  }
  return value;
}

/// Two-state Gilbert-Elliott erasure chain, one chain per undirected edge.
/// The chain state at round r is a pure function of (seed, edge, r): the
/// initial state is a stationary hash draw and every advance step s in
/// 1..r uses the hashed draw for (edge, s).  The cache only memoizes that
/// function (queries arrive in nondecreasing round order per edge, so the
/// advance loop is O(1) amortized); it can never leak state across edges.
class gilbert_elliott_chain {
 public:
  gilbert_elliott_chain(std::uint64_t seed, double p_good_bad,
                        double p_bad_good, double loss_good, double loss_bad)
      : seed_(seed),
        p_good_bad_(p_good_bad),
        p_bad_good_(p_bad_good),
        loss_good_(loss_good),
        loss_bad_(loss_bad) {}

  bool lost(round_t round, node_id from, node_id to) {
    const std::uint64_t key = edge_key(from, to);
    const bool bad = state_at(key, round);
    const double p = bad ? loss_bad_ : loss_good_;
    if (p <= 0.0) return false;
    return unit(link_draw(seed_, stream_loss, key,
                          round_slot(round, from, to))) < p;
  }

 private:
  struct edge_state {
    round_t next = 0;  // first advance step not yet applied
    bool bad = false;
  };

  bool state_at(std::uint64_t key, round_t round) {
    auto [it, fresh] = states_.try_emplace(key);
    edge_state& st = it->second;
    if (fresh) {
      // Stationary start so the first observed round is not biased good.
      const double denom = p_good_bad_ + p_bad_good_;
      const double pi_bad = denom > 0.0 ? p_good_bad_ / denom : 0.0;
      st.bad = unit(link_draw(seed_, stream_chain_init, key, 0)) < pi_bad;
      st.next = 1;
    }
    NCDN_ASSERT(st.next <= round + 1);  // queries are nondecreasing per edge
    for (; st.next <= round; ++st.next) {
      const double u = unit(link_draw(seed_, stream_chain, key, st.next));
      st.bad = st.bad ? !(u < p_bad_good_) : u < p_good_bad_;
    }
    return st.bad;
  }

  std::uint64_t seed_;
  double p_good_bad_;
  double p_bad_good_;
  double loss_good_;
  double loss_bad_;
  std::map<std::uint64_t, edge_state> states_;
};

/// The full channel: a loss process wrapped with the shared latency and
/// medium layer (see linkmodel.hpp for the param vocabulary).
class channel final : public link_model {
 public:
  channel(std::function<bool(round_t, node_id, node_id)> loss,
          std::uint64_t seed, round_t fixed_delay, round_t max_delay,
          medium_mode medium, bool collisions, double tx_prob)
      : loss_(std::move(loss)),
        seed_(seed),
        fixed_delay_(fixed_delay),
        max_delay_(max_delay),
        medium_(medium),
        collisions_(collisions),
        tx_prob_(tx_prob) {}

  bool lost(round_t round, node_id from, node_id to) override {
    return loss_(round, from, to);
  }

  round_t delay(round_t round, node_id from, node_id to) override {
    if (max_delay_ == 0) return fixed_delay_;
    const std::uint64_t h = link_draw(seed_, stream_delay,
                                      edge_key(from, to),
                                      round_slot(round, from, to));
    return static_cast<round_t>(h % (max_delay_ + 1));
  }

  bool transmits(round_t round, node_id u) override {
    if (tx_prob_ >= 1.0) return true;
    return unit(link_draw(seed_, stream_tx, u, round)) < tx_prob_;
  }

  medium_mode medium() const override { return medium_; }
  bool collisions() const override { return collisions_; }

 private:
  std::function<bool(round_t, node_id, node_id)> loss_;
  std::uint64_t seed_;
  round_t fixed_delay_;
  round_t max_delay_;  // 0 = fixed delay; else uniform in [0, max_delay_]
  medium_mode medium_;
  bool collisions_;
  double tx_prob_;
};

void register_builtin_links(link_registry& reg) {
  reg.add({"perfect", "reliable erasure-free links (latency/medium only)",
           [](param_reader&, std::uint64_t) {
             return [](round_t, node_id, node_id) { return false; };
           }});
  reg.add({"bernoulli", "iid per-copy erasures with probability p [p]",
           [](param_reader& params, std::uint64_t seed) {
             const double p = checked_link_probability(
                 "link model 'bernoulli'", "p", params.real("p", 0.1));
             return [p, seed](round_t round, node_id from, node_id to) {
               if (p <= 0.0) return false;
               return unit(link_draw(seed, stream_loss, edge_key(from, to),
                                     round_slot(round, from, to))) < p;
             };
           }});
  reg.add({"gilbert-elliott",
           "two-state bursty erasures [p_good_bad, p_bad_good, loss_good, "
           "loss_bad]",
           [](param_reader& params, std::uint64_t seed) {
             const std::string ctx = "link model 'gilbert-elliott'";
             const double p_gb = checked_link_probability(
                 ctx, "p_good_bad", params.real("p_good_bad", 0.1));
             const double p_bg = checked_link_probability(
                 ctx, "p_bad_good", params.real("p_bad_good", 0.3));
             const double loss_good = checked_link_probability(
                 ctx, "loss_good", params.real("loss_good", 0.02));
             const double loss_bad = checked_link_probability(
                 ctx, "loss_bad", params.real("loss_bad", 0.6));
             auto chain = std::make_shared<gilbert_elliott_chain>(
                 seed, p_gb, p_bg, loss_good, loss_bad);
             return [chain](round_t round, node_id from, node_id to) {
               return chain->lost(round, from, to);
             };
           }});
}

}  // namespace

link_registry& link_registry::instance() {
  static link_registry reg = [] {
    link_registry r;
    register_builtin_links(r);
    return r;
  }();
  return reg;
}

void link_registry::add(link_entry entry) {
  NCDN_EXPECTS(!entry.name.empty());
  NCDN_EXPECTS(find(entry.name) == nullptr);  // duplicate registration
  entries_.push_back(std::move(entry));
}

const link_entry* link_registry::find(const std::string& name) const {
  for (const link_entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> list_link_names() {
  std::vector<std::string> out;
  for (const link_entry& e : link_registry::instance().entries()) {
    out.push_back(e.name);
  }
  return out;
}

std::unique_ptr<link_model> build_link_model(const link_spec& spec,
                                             std::uint64_t seed) {
  NCDN_EXPECTS(!spec.empty());
  const link_entry* entry = link_registry::instance().find(spec.name);
  if (entry == nullptr) {
    throw std::invalid_argument("ncdn: unknown link model '" + spec.name +
                                "' (known: " + join_keys(list_link_names()) +
                                ")");
  }
  const std::string context = "link model '" + spec.name + "'";
  param_reader params(spec.params, context);
  auto loss = entry->make_loss(params, seed);

  const round_t fixed_delay = params.u64("delay", 0);
  const round_t max_delay = params.u64("delay_max", 0);
  if (fixed_delay != 0 && max_delay != 0) {
    throw std::invalid_argument("ncdn: " + context +
                                " takes delay or delay_max, not both");
  }
  medium_mode medium = medium_mode::full;
  const std::string medium_name = params.str("medium", "full");
  if (medium_name == "full") {
    medium = medium_mode::full;
  } else if (medium_name == "half-duplex") {
    medium = medium_mode::half_duplex;
  } else if (medium_name == "broadcast") {
    medium = medium_mode::broadcast;
  } else {
    throw std::invalid_argument("ncdn: " + context +
                                " needs medium=full|half-duplex|broadcast, "
                                "got '" + medium_name + "'");
  }
  const bool collisions = params.flag("collisions", true);
  const double tx_prob = params.real("tx_prob", 1.0);
  if (!(tx_prob > 0.0 && tx_prob <= 1.0)) {
    throw std::invalid_argument("ncdn: " + context +
                                " needs tx_prob in (0, 1]");
  }
  params.expect_fully_consumed();
  return std::make_unique<channel>(std::move(loss), seed, fixed_delay,
                                   max_delay, medium, collisions, tx_prob);
}

link_spec parse_link_spec(const std::string& text) {
  link_spec spec;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string part =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (first) {
      if (part.empty() || part.find('=') != std::string::npos) {
        throw std::invalid_argument(
            "ncdn: --link needs \"name[,key=value]...\", got '" + text + "'");
      }
      spec.name = part;
      first = false;
    } else {
      const std::size_t eq = part.find('=');
      if (eq == 0 || eq == std::string::npos) {
        throw std::invalid_argument("ncdn: bad --link parameter '" + part +
                                    "' (need key=value)");
      }
      spec.params[part.substr(0, eq)] = part.substr(eq + 1);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return spec;
}

}  // namespace ncdn
