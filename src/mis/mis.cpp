#include "mis/mis.hpp"

#include <algorithm>

#include "core/contracts.hpp"

namespace ncdn {

std::vector<node_id> luby_mis(const graph& g, rng& r) {
  const std::size_t n = g.order();
  std::vector<bool> active(n, true);
  std::vector<bool> in_mis(n, false);
  std::vector<std::uint64_t> prio(n);
  std::size_t remaining = n;

  while (remaining > 0) {
    // Random priorities; ties broken by uid (priorities are 64-bit so ties
    // are vanishingly rare anyway).
    for (node_id u = 0; u < n; ++u) {
      if (active[u]) prio[u] = r();
    }
    for (node_id u = 0; u < n; ++u) {
      if (!active[u]) continue;
      bool is_max = true;
      for (node_id v : g.neighbors(u)) {
        if (active[v] &&
            (prio[v] > prio[u] || (prio[v] == prio[u] && v > u))) {
          is_max = false;
          break;
        }
      }
      if (is_max) in_mis[u] = true;
    }
    for (node_id u = 0; u < n; ++u) {
      if (!active[u] || !in_mis[u]) continue;
      active[u] = false;
      --remaining;
      for (node_id v : g.neighbors(u)) {
        if (active[v]) {
          active[v] = false;
          --remaining;
        }
      }
    }
  }

  std::vector<node_id> out;
  for (node_id u = 0; u < n; ++u) {
    if (in_mis[u]) out.push_back(u);
  }
  return out;
}

std::vector<node_id> greedy_mis(const graph& g) {
  const std::size_t n = g.order();
  std::vector<bool> blocked(n, false);
  std::vector<node_id> out;
  for (node_id u = 0; u < n; ++u) {
    if (blocked[u]) continue;
    out.push_back(u);
    for (node_id v : g.neighbors(u)) blocked[v] = true;
  }
  return out;
}

bool is_independent_set(const graph& g, const std::vector<node_id>& s) {
  std::vector<bool> member(g.order(), false);
  for (node_id u : s) member[u] = true;
  for (node_id u : s) {
    for (node_id v : g.neighbors(u)) {
      if (member[v]) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const graph& g,
                                const std::vector<node_id>& s) {
  if (!is_independent_set(g, s)) return false;
  std::vector<bool> covered(g.order(), false);
  for (node_id u : s) {
    covered[u] = true;
    for (node_id v : g.neighbors(u)) covered[v] = true;
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool c) { return c; });
}

}  // namespace ncdn
