#include "mis/patching.hpp"

#include <algorithm>
#include <limits>

#include "core/contracts.hpp"

namespace ncdn {

patch_set build_patches(const graph& g, std::uint32_t d,
                        const std::vector<node_id>& mis) {
  NCDN_EXPECTS(d >= 1);
  NCDN_EXPECTS(!mis.empty());
  const std::size_t n = g.order();

  patch_set p;
  p.d_param = d;
  p.leaders = mis;
  std::sort(p.leaders.begin(), p.leaders.end());

  // Distance from every leader (leaders are few: MIS of G^D).
  std::vector<std::vector<std::uint32_t>> dist;
  dist.reserve(p.leaders.size());
  for (node_id s : p.leaders) dist.push_back(g.bfs_distances(s));

  // Assign each vertex to the (distance, leader-uid)-lexicographic minimum.
  p.patch_of.assign(n, 0);
  p.depth.assign(n, 0);
  for (node_id v = 0; v < n; ++v) {
    std::uint32_t best_dist = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t best_patch = 0;
    for (std::uint32_t i = 0; i < p.leaders.size(); ++i) {
      if (dist[i][v] < best_dist) {
        best_dist = dist[i][v];
        best_patch = i;
      }
    }
    NCDN_ASSERT(best_dist != std::numeric_limits<std::uint32_t>::max());
    p.patch_of[v] = best_patch;
    p.depth[v] = best_dist;
  }

  // Shortest-path-tree parents: the lowest-uid neighbour one step closer to
  // the same leader and assigned to the same patch (always exists; see
  // header file of the patching module).
  p.parent.assign(n, 0);
  p.children.assign(n, {});
  p.members.assign(p.leaders.size(), {});
  for (node_id v = 0; v < n; ++v) {
    const std::uint32_t i = p.patch_of[v];
    p.members[i].push_back(v);
    if (p.depth[v] == 0) {
      p.parent[v] = v;  // leader roots itself
      continue;
    }
    node_id chosen = v;
    for (node_id w : g.neighbors(v)) {
      if (p.patch_of[w] == i && p.depth[w] + 1 == p.depth[v]) {
        if (chosen == v || w < chosen) chosen = w;
      }
    }
    NCDN_ASSERT(chosen != v);
    p.parent[v] = chosen;
    p.children[chosen].push_back(v);
  }
  for (auto& c : p.children) std::sort(c.begin(), c.end());
  return p;
}

bool patches_valid(const graph& g, const patch_set& p) {
  const std::size_t n = g.order();
  if (p.patch_of.size() != n || p.depth.size() != n || p.parent.size() != n) {
    return false;
  }
  // Tree consistency + depth bound.
  for (node_id v = 0; v < n; ++v) {
    if (p.depth[v] > p.d_param) return false;
    if (p.depth[v] == 0) {
      if (p.parent[v] != v) return false;
      if (p.leaders[p.patch_of[v]] != v) return false;
    } else {
      const node_id w = p.parent[v];
      if (!g.has_edge(v, w)) return false;
      if (p.patch_of[w] != p.patch_of[v]) return false;
      if (p.depth[w] + 1 != p.depth[v]) return false;
    }
  }
  // Members partition the vertex set.
  std::size_t total = 0;
  for (std::uint32_t i = 0; i < p.members.size(); ++i) {
    total += p.members[i].size();
    for (node_id v : p.members[i]) {
      if (p.patch_of[v] != i) return false;
    }
  }
  if (total != n) return false;
  // Size bound: patch of leader u contains the full d/2-ball around u
  // (leaders are > d apart, so any v with 2*dist(v,u) <= d is strictly
  // closer to u than to any other leader).
  for (std::uint32_t i = 0; i < p.leaders.size(); ++i) {
    const auto dist = g.bfs_distances(p.leaders[i]);
    for (node_id v = 0; v < n; ++v) {
      if (dist[v] * 2 <= p.d_param && p.patch_of[v] != i) return false;
    }
  }
  return true;
}

}  // namespace ncdn
