// Maximal independent sets (paper §8.1).
//
// The patching construction takes an MIS S of G^D and assigns every vertex
// to its closest MIS vertex, giving connected patches of diameter O(D) and
// size Omega(D).  Luby's permutation algorithm is the randomized MIS the
// paper adapts; the deterministic greedy-by-UID MIS substitutes for the
// Panconesi–Srinivasan algorithm the paper cites (see DESIGN.md §5 —
// the patch construction only consumes MIS-ness, which both provide).
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "dynnet/graph.hpp"

namespace ncdn {

/// Luby's algorithm: repeated rounds of random priorities; local maxima
/// join, neighbours deactivate.  Returns the MIS members, sorted.
std::vector<node_id> luby_mis(const graph& g, rng& r);

/// Deterministic: scan by UID, greedily add any vertex with no smaller-UID
/// neighbour already selected.
std::vector<node_id> greedy_mis(const graph& g);

/// Test oracles.
bool is_independent_set(const graph& g, const std::vector<node_id>& s);
bool is_maximal_independent_set(const graph& g, const std::vector<node_id>& s);

}  // namespace ncdn
