// Graph patching (paper §8.1): partition a (window-stable) graph into
// connected patches of diameter O(D) and size Omega(D) around the vertices
// of an MIS of G^D.
//
//   1. leaders = MIS of G^D;
//   2. every vertex joins the patch of its closest leader (ties: lowest
//      leader UID);
//   3. each patch carries a shortest-path tree rooted at the leader, so
//      ancestors of a patch member belong to the same patch (the paper's
//      connectivity argument) and the depth — hence half the patch
//      diameter — is at most D.
#pragma once

#include <vector>

#include "dynnet/graph.hpp"

namespace ncdn {

struct patch_set {
  std::uint32_t d_param = 0;
  std::vector<node_id> leaders;             // patch index -> leader uid
  std::vector<std::uint32_t> patch_of;      // node -> patch index
  std::vector<std::uint32_t> depth;         // node -> depth in patch tree
  std::vector<node_id> parent;              // node -> parent (self if leader)
  std::vector<std::vector<node_id>> children;  // node -> tree children
  std::vector<std::vector<node_id>> members;   // patch index -> nodes

  std::size_t patch_count() const noexcept { return leaders.size(); }
};

/// Builds patches from a given MIS of g.power(d).
patch_set build_patches(const graph& g, std::uint32_t d,
                        const std::vector<node_id>& mis);

/// Invariant oracle used by tests: connectivity, depth <= d, tree
/// consistency, and the paper's size bound (patch containing leader u holds
/// every vertex within distance d/2 of u).
bool patches_valid(const graph& g, const patch_set& p);

}  // namespace ncdn
